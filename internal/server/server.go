// Package server is the streamschedd daemon's core: a long-running
// HTTP/JSON service that accepts SDF graph specs, plans and profiles
// them through the existing schedule.Env machinery, and serves the
// results to many concurrent clients.
//
// Three mechanisms keep the hot path at cached-lookup speed and the cold
// path bounded:
//
//   - a content-addressed result cache (internal/plancache): response
//     bodies are cached verbatim under a SHA-256 of the canonicalised
//     request plus the engine version, so a cache hit is one lookup and
//     one write, and a cached body is byte-identical to a fresh
//     computation;
//   - single-flight coalescing: identical requests in flight at the same
//     time compute once — followers wait on the leader's result. The
//     leader computes detached from its client's context, so a client
//     that gives up still leaves a warm cache behind;
//   - a bounded worker pool: at most Config.Jobs computations run
//     concurrently (the rest queue on the pool semaphore), keeping a
//     burst of distinct cold requests from oversubscribing the CPUs that
//     the profiling engine's own ProfileJobs shards want.
//
// Separating pure planning/profiling (internal/schedule — stateless,
// deterministic) from process-lifetime state (this package + the cache)
// is the refactor the service boundary forces; handlers hold no mutable
// state beyond the cache and flight table.
//
// A raw-body memo accelerates the common hot case — clients resending a
// byte-identical request — by mapping SHA-256(endpoint ‖ body) straight
// to the canonical key, skipping JSON parsing and graph canonicalisation
// entirely on that path (counted by server.fastpath.hits).
//
// The daemon metric contract (see README and SERVICE.md) adds the
// server.* family to plancache's cache.*: server.requests,
// server.errors, server.computations, server.singleflight.shared,
// server.timeouts, server.fastpath.hits counters, the server.inflight
// gauge, and the server.request.duration / server.compute.duration
// timers (each with a same-named latency histogram, so /metrics carries
// p50/p90/p99).
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamsched/internal/obs"
	"streamsched/internal/plancache"
	"streamsched/internal/schedule"
	"streamsched/internal/sdf"
)

// EngineVersion names the planning/profiling engine semantics baked into
// this build. It participates in every cache key and is the pin the
// result cache invalidates on, so bump it whenever a scheduler, the
// execution machine, or the profiling engine changes observable output —
// stale entries from the previous engine are then unreachable (new keys)
// and reclaimed deterministically (version pin).
const EngineVersion = "streamsched-engine/1"

// Config configures a Server.
type Config struct {
	// Engine overrides the engine version (tests only; default
	// EngineVersion).
	Engine string
	// CacheBytes is the result cache's byte budget. 0 disables caching.
	CacheBytes int64
	// Jobs bounds concurrent computations (the worker pool). 0 means
	// one per CPU; negative is rejected by New.
	Jobs int
	// ProfileJobs is schedule.Env.ProfileJobs for each computation: how
	// many workers the profiling engine shards one request across.
	// Default 1 (sequential) — under concurrent load the request-level
	// pool is the better parallelism axis; raise it for big single
	// profiles on an idle daemon.
	ProfileJobs int
	// DecodeJobs is schedule.Env.DecodeJobs for each computation: the
	// parallel chunk-decode width of the profiling pipeline. Default 1
	// (sequential decode) for the same reason as ProfileJobs; raise both
	// together for big single profiles on an idle daemon.
	DecodeJobs int
	// Timeout bounds how long a client waits for a computation (the
	// computation itself runs to completion and fills the cache).
	// Default 60s.
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies. Default 8 MiB.
	MaxBodyBytes int64
	// Metrics receives the server.* and cache.* metric families and is
	// served on the observability endpoints. Nil falls back to the
	// process default registry.
	Metrics *obs.Registry
}

// Server handles the daemon's HTTP API. Construct with New; the handler
// from Handler is safe for concurrent use.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	cache *plancache.Cache
	sem   chan struct{}

	mu      sync.Mutex
	flights map[plancache.Key]*flight

	// rawKeys memoises SHA-256(endpoint ‖ exact request bytes) → canonical
	// key, letting a byte-identical repeat of a request skip JSON parsing
	// and graph canonicalisation on the hit path. It is a lookaside only:
	// the canonical key remains the content address, and any body not in
	// the memo (including equivalent-but-differently-ordered JSON) takes
	// the full normalise-and-hash path to the same key.
	rawMu   sync.Mutex
	rawKeys map[rawKey]plancache.Key

	inflight atomic.Int64

	requests, errors, computations, shared, timeouts, fastpath *obs.Counter
	inflightG                                                  *obs.Gauge
	reqDur, compDur                                            *obs.Timer
}

// rawKey addresses the raw-body memo.
type rawKey [sha256.Size]byte

// rawMemoMax bounds the raw-body memo; on overflow the memo is flushed
// (entries are 64 bytes of hashes, so the bound is ~1 MiB of memory, and
// a flush only costs re-parses, never wrong answers).
const rawMemoMax = 16384

// flight is one in-progress computation; followers wait on done.
type flight struct {
	done chan struct{}
	body []byte // valid after done is closed, when err == nil
	err  error
}

// New builds a server. The cache is pinned to the configured engine
// version.
func New(cfg Config) *Server {
	if cfg.Engine == "" {
		cfg.Engine = EngineVersion
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	if cfg.ProfileJobs == 0 {
		cfg.ProfileJobs = 1
	}
	if cfg.DecodeJobs == 0 {
		cfg.DecodeJobs = 1
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	reg := obs.Or(cfg.Metrics)
	return &Server{
		cfg: cfg,
		reg: reg,
		cache: plancache.New(plancache.Config{
			Budget:  cfg.CacheBytes,
			Version: cfg.Engine,
			Metrics: reg,
		}),
		sem:          make(chan struct{}, cfg.Jobs),
		flights:      make(map[plancache.Key]*flight),
		rawKeys:      make(map[rawKey]plancache.Key),
		requests:     reg.Counter("server.requests"),
		errors:       reg.Counter("server.errors"),
		computations: reg.Counter("server.computations"),
		shared:       reg.Counter("server.singleflight.shared"),
		timeouts:     reg.Counter("server.timeouts"),
		fastpath:     reg.Counter("server.fastpath.hits"),
		inflightG:    reg.Gauge("server.inflight"),
		reqDur:       reg.Timer("server.request.duration"),
		compDur:      reg.Timer("server.compute.duration"),
	}
}

// Engine returns the engine version the server plans with.
func (s *Server) Engine() string { return s.cfg.Engine }

// Cache exposes the result cache (stats endpoints, tests).
func (s *Server) Cache() *plancache.Cache { return s.cache }

// Handler returns the daemon's mux:
//
//	POST /v1/plan      plan a graph (PlanRequest -> PlanResponse)
//	POST /v1/profile   record + profile a miss curve (ProfileRequest -> ProfileResponse)
//	GET  /v1/stats     cache and pool stats as JSON
//	GET  /healthz      liveness ("ok")
//	GET  /version      engine version JSON
//	GET  /metrics, /metrics.json, /spans, /debug/pprof/   internal/obs exposition
//	GET  /             endpoint index
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	obsH := obs.Handler(s.reg)
	for _, p := range []string{"/metrics", "/metrics.json", "/spans", "/debug/pprof/"} {
		mux.Handle(p, obsH)
	}
	mux.HandleFunc("/v1/plan", func(w http.ResponseWriter, r *http.Request) {
		s.handleCompute(w, r, "plan", s.planBody)
	})
	mux.HandleFunc("/v1/profile", func(w http.ResponseWriter, r *http.Request) {
		s.handleCompute(w, r, "profile", s.profileBody)
	})
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"engine": s.cfg.Engine})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			s.writeError(w, http.StatusNotFound, CodeNotFound, "no such endpoint")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "streamschedd — streaming-schedule planning service\n\n"+
			"POST /v1/plan      plan a graph\n"+
			"POST /v1/profile   miss-curve profile of a planned schedule\n"+
			"GET  /v1/stats     cache/pool stats\n"+
			"GET  /healthz      liveness\n"+
			"GET  /version      engine version\n"+
			"GET  /metrics      Prometheus text exposition\n"+
			"GET  /metrics.json registry snapshot\n"+
			"GET  /spans        live span tree\n"+
			"GET  /debug/pprof/ pprof profiles\n")
	})
	return mux
}

// parseAndKey decodes a request body into either request type, applying
// defaults, and returns the canonical key plus the closure that computes
// the response body. The closure captures only normalised values.
type bodyFunc func(body []byte) (plancache.Key, func() ([]byte, error), error)

// handleCompute is the shared request path: parse -> key -> cache ->
// single-flight compute -> respond. The X-Streamsched-Cache header
// reports hit/miss, X-Streamsched-Key the content address.
func (s *Server) handleCompute(w http.ResponseWriter, r *http.Request, kind string, parse bodyFunc) {
	defer s.reqDur.Start()()
	s.requests.Inc()
	s.inflightG.Set(s.inflight.Add(1))
	defer func() { s.inflightG.Set(s.inflight.Add(-1)) }()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethod, "use POST")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, "read body: "+err.Error())
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		s.writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	// Fast path: a byte-identical repeat of an already-keyed body skips
	// parsing. Only a cache hit can be served from here — on a miss the
	// compute closure is needed, which requires the full parse.
	rk := hashRaw(kind, body)
	if key, ok := s.rawLookup(rk); ok {
		if cached, ok := s.cache.Get(key); ok {
			s.fastpath.Inc()
			s.writeResult(w, key, cached, true)
			return
		}
	}
	key, compute, err := parse(body)
	if err != nil {
		var bad *badRequestError
		if errors.As(err, &bad) {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, bad.Error())
		} else {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		}
		return
	}
	s.rawStore(rk, key)
	if cached, ok := s.cache.Get(key); ok {
		s.writeResult(w, key, cached, true)
		return
	}
	f, leader := s.flightFor(key)
	if f == nil {
		// flightFor re-checked the cache under the flight lock and hit:
		// the previous leader finished between our Get and the lock.
		cached, _ := s.cache.Get(key)
		s.writeResult(w, key, cached, true)
		return
	}
	if leader {
		go s.runFlight(key, f, compute)
	} else {
		s.shared.Inc()
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	select {
	case <-f.done:
		if f.err != nil {
			s.writeError(w, http.StatusInternalServerError, CodeInternal, f.err.Error())
			return
		}
		s.writeResult(w, key, f.body, false)
	case <-ctx.Done():
		s.timeouts.Inc()
		s.writeError(w, http.StatusGatewayTimeout, CodeTimeout,
			"computation still running; retry to pick up the cached result")
	}
}

// hashRaw addresses a request body in the raw-body memo. The endpoint
// name is mixed in so the same bytes posted to /v1/plan and /v1/profile
// cannot alias.
func hashRaw(kind string, body []byte) rawKey {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(body)
	var k rawKey
	h.Sum(k[:0])
	return k
}

// rawLookup consults the raw-body memo.
func (s *Server) rawLookup(rk rawKey) (plancache.Key, bool) {
	s.rawMu.Lock()
	defer s.rawMu.Unlock()
	k, ok := s.rawKeys[rk]
	return k, ok
}

// rawStore memoises a successfully keyed body, flushing the memo at the
// size bound.
func (s *Server) rawStore(rk rawKey, key plancache.Key) {
	s.rawMu.Lock()
	defer s.rawMu.Unlock()
	if len(s.rawKeys) >= rawMemoMax {
		s.rawKeys = make(map[rawKey]plancache.Key)
	}
	s.rawKeys[rk] = key
}

// flightFor returns the in-flight computation for key, creating one
// (leader == true) if none exists. A nil flight means the cache was
// populated while we raced for the lock — the caller should re-read it.
func (s *Server) flightFor(key plancache.Key) (f *flight, leader bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.flights[key]; ok {
		return f, false
	}
	// The previous leader deletes its flight only after Put, so a
	// missing flight with a populated cache means the result landed
	// between the caller's cache miss and this lock.
	if _, ok := s.cache.Get(key); ok {
		return nil, false
	}
	f = &flight{done: make(chan struct{})}
	s.flights[key] = f
	return f, true
}

// runFlight executes one computation on the worker pool, publishes the
// result to the cache, and releases the flight. It runs detached from
// any request context: the work always completes and warms the cache,
// even if every waiting client times out.
func (s *Server) runFlight(key plancache.Key, f *flight, compute func() ([]byte, error)) {
	s.sem <- struct{}{}
	func() {
		defer func() { <-s.sem }()
		defer s.compDur.Start()()
		s.computations.Inc()
		f.body, f.err = compute()
	}()
	if f.err == nil {
		// Put strictly before the flight is deleted: any request that
		// finds no flight under the lock is guaranteed a cache hit, which
		// is what makes "identical requests compute once" exact rather
		// than probabilistic.
		s.cache.Put(key, f.body)
	}
	close(f.done)
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
}

// planBody parses and keys a plan request and returns its compute
// closure.
func (s *Server) planBody(body []byte) (plancache.Key, func() ([]byte, error), error) {
	var req PlanRequest
	if err := unmarshalStrict(body, &req); err != nil {
		return plancache.Key{}, nil, err
	}
	g, err := req.normalize()
	if err != nil {
		return plancache.Key{}, nil, err
	}
	key := req.key(s.cfg.Engine, g)
	return key, func() ([]byte, error) { return s.computePlan(&req, g, key) }, nil
}

// profileBody parses and keys a profile request and returns its compute
// closure.
func (s *Server) profileBody(body []byte) (plancache.Key, func() ([]byte, error), error) {
	var req ProfileRequest
	if err := unmarshalStrict(body, &req); err != nil {
		return plancache.Key{}, nil, err
	}
	g, err := req.normalize()
	if err != nil {
		return plancache.Key{}, nil, err
	}
	key := req.key(s.cfg.Engine, g)
	return key, func() ([]byte, error) { return s.computeProfile(&req, g, key) }, nil
}

// computePlan runs the scheduler and serialises the response body.
func (s *Server) computePlan(req *PlanRequest, g *sdf.Graph, key plancache.Key) ([]byte, error) {
	sched, err := schedulerFor(req.Scheduler, g, req.Scale)
	if err != nil {
		return nil, err
	}
	env := schedule.Env{M: req.M, B: req.B, Metrics: s.reg, ProfileJobs: s.cfg.ProfileJobs, DecodeJobs: s.cfg.DecodeJobs}
	plan, err := sched.Prepare(g, env)
	if err != nil {
		return nil, fmt.Errorf("plan %s: %w", sched.Name(), err)
	}
	resp := &PlanResponse{
		Engine:     s.cfg.Engine,
		Key:        key.String(),
		Graph:      g.Name(),
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		Scheduler:  sched.Name(),
		M:          req.M,
		B:          req.B,
		Caps:       plan.Caps,
		CrossEdges: make([]int64, 0, len(plan.CrossEdges)),
	}
	for _, c := range plan.Caps {
		resp.BufferWords += c
	}
	for _, e := range plan.CrossEdges {
		resp.CrossEdges = append(resp.CrossEdges, int64(e))
	}
	return marshalBody(resp)
}

// computeProfile records and profiles one schedule and serialises the
// response body.
func (s *Server) computeProfile(req *ProfileRequest, g *sdf.Graph, key plancache.Key) ([]byte, error) {
	sched, err := schedulerFor(req.Scheduler, g, req.Scale)
	if err != nil {
		return nil, err
	}
	env := schedule.Env{M: req.M, B: req.B, Metrics: s.reg, ProfileJobs: s.cfg.ProfileJobs, DecodeJobs: s.cfg.DecodeJobs}
	cr, err := schedule.MeasureCurve(g, sched, env, req.B, req.Warm, req.Measure)
	if err != nil {
		return nil, fmt.Errorf("profile %s: %w", sched.Name(), err)
	}
	caps := req.Caps
	if len(caps) == 0 {
		caps = defaultGrid(req.B, cr.Curve.SaturationLines())
	}
	resp := &ProfileResponse{
		Engine:          s.cfg.Engine,
		Key:             key.String(),
		Graph:           g.Name(),
		Scheduler:       cr.Scheduler,
		M:               req.M,
		B:               req.B,
		Warm:            req.Warm,
		Measure:         req.Measure,
		SourceFired:     cr.SourceFired,
		InputItems:      cr.InputItems,
		Accesses:        cr.Curve.Accesses,
		WorkingSetLines: cr.Curve.SaturationLines(),
		BufferWords:     cr.BufferWords,
		Points:          make([]CurvePoint, 0, len(caps)),
	}
	for _, c := range caps {
		resp.Points = append(resp.Points, CurvePoint{
			Capacity:      c,
			Misses:        cr.Curve.MissesAtCapacity(c, req.B),
			MissesPerItem: cr.MissesPerItem(c, req.B),
		})
	}
	return marshalBody(resp)
}

// defaultGrid is the capacity grid used when a profile request names no
// caps: powers of two in whole blocks, one block to just past the
// working set.
func defaultGrid(block, workingSetLines int64) []int64 {
	maxWords := workingSetLines * block
	var caps []int64
	for c := block; ; c *= 2 {
		caps = append(caps, c)
		if c >= 2*maxWords {
			break
		}
	}
	return caps
}

// handleStats serves cache/pool stats as JSON (not cached, not part of
// the stable metric contract — use /metrics for dashboards).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	stats := map[string]any{
		"engine":        s.cfg.Engine,
		"cache_entries": s.cache.Len(),
		"cache_bytes":   s.cache.Bytes(),
		"cache_budget":  s.cache.Budget(),
		"jobs":          s.cfg.Jobs,
		"profile_jobs":  s.cfg.ProfileJobs,
		"decode_jobs":   s.cfg.DecodeJobs,
		"cache_hits":    snap.Counters["cache.hits"],
		"cache_misses":  snap.Counters["cache.misses"],
		"evictions":     snap.Counters["cache.evictions"],
		"requests":      snap.Counters["server.requests"],
		"computations":  snap.Counters["server.computations"],
		"shared":        snap.Counters["server.singleflight.shared"],
		"fastpath":      snap.Counters["server.fastpath.hits"],
		"timeouts":      snap.Counters["server.timeouts"],
		"errors":        snap.Counters["server.errors"],
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}

// writeResult serves a computed or cached body.
func (s *Server) writeResult(w http.ResponseWriter, key plancache.Key, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Streamsched-Key", key.String())
	if hit {
		w.Header().Set("X-Streamsched-Cache", "hit")
	} else {
		w.Header().Set("X-Streamsched-Cache", "miss")
	}
	w.Write(body)
}

// writeError serves the uniform error body and counts it.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.errors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg, Code: code})
}

// marshalBody serialises a response struct to its canonical cached form:
// compact JSON plus a trailing newline.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// unmarshalStrict decodes JSON rejecting unknown fields, so a client
// typo (e.g. "blocksize") fails loudly instead of silently hashing to
// the default.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("bad request json: %v", err)
	}
	return nil
}
